//! Repo-specific source lints for the GVFS workspace.
//!
//! Four rules, all keyed to the consistency protocol's concurrency
//! discipline (see `DESIGN.md`, "Checked invariants"):
//!
//! 1. **guard-across-send** — no named `MutexGuard`/`RwLock` guard may
//!    be live at an RPC send or callback invocation. The delegation
//!    protocol re-enters the proxy server from callback replies, so a
//!    guard held across the wire is a deadlock waiting for load.
//! 2. **unwrap-in-request-path** — no `unwrap()`/`expect()` in the
//!    proxy, server, or RPC request paths; a malformed request must
//!    surface as an error reply, not a panic that takes the session
//!    down.
//! 3. **protocol-match-exhaustive** — `match`es over the wire-protocol
//!    enums declared in `crates/core/src/protocol.rs` must not use a
//!    `_` arm, so adding a protocol variant fails to compile instead of
//!    silently taking a default path.
//! 4. **lock-order** — nested lock acquisitions in `crates/core` must
//!    follow the declared session → delegation → invalidation order
//!    (see [`LOCK_ORDER`]).
//!
//! The pass is textual (a token scan, not a type-checked analysis):
//! only *named* guards (`let g = x.lock();`) are tracked, and
//! `#[cfg(test)]` modules are skipped. That is deliberate — the
//! codebase's idiom for "release before the wire" is a named guard in a
//! scoped block, which is exactly the shape the scan verifies.

use crate::lexer::{tokenize, Kind, Token};
use std::fmt;
use std::path::{Path, PathBuf};

/// The declared lock order for `crates/core`, outermost first. A lock
/// may only be acquired while holding locks of strictly lower rank.
///
/// Rank 0 is the session layer (callback routes, persisted client
/// list), then the client disk cache, then the proxy-client volatile
/// state and the server's per-shard delegation tables (`deleg`, one
/// mutex per file-handle shard; a thread holds at most one shard at a
/// time, so the shards share a rank), then the sharded invalidation
/// tracker (`buffers` registry read/write lock over the per-client
/// `buf` mutexes), then the write-back/invalidation plumbing, then
/// actor handles (flusher/poller/supervisor), the server's per-client
/// WAN-health registry (`health`, scoped to a breaker lookup, never
/// held across the wire), and counters.
pub const LOCK_ORDER: &[(&str, u32)] = &[
    ("callbacks", 0),
    ("persisted_clients", 0),
    ("mounts", 0),
    ("disk", 1),
    ("state", 2),
    ("deleg", 2),
    ("readahead", 2),
    ("buffers", 3),
    ("buf", 4),
    ("flush_queue", 5),
    ("flusher", 6),
    ("poller", 6),
    ("supervisor", 6),
    ("poll_ts", 7),
    ("health", 7),
    ("stats", 8),
];

/// Method names that send an RPC or invoke a callback (directly or as
/// the documented entry point of a path that does). `send` /
/// `send_with_cred` / `wait_pending` are the split halves of the
/// [`RpcChannel`] pipeline: issuing *or* awaiting a pending call parks
/// the actor, so a live guard at either point is held across the wire.
/// (`wait` itself is deliberately absent: `Condvar::wait(guard)` in the
/// TCP transport legitimately consumes a guard.)
///
/// [`RpcChannel`]: ../../rpc/src/channel.rs
const SEND_MARKERS: &[&str] = &[
    "call",
    "call_with_cred",
    "send",
    "send_with_cred",
    "wait_pending",
    "dispatch",
    "forward",
    "forward_wan",
    "perform_recall",
    "perform_recalls",
    "send_recall",
    "finish_recall",
    "flush_block",
    "flush_blocks",
    "flush_all",
    "drain_flush_queue",
    "poll_once",
    "read_from_cache",
    "fetch_missing",
    "maybe_prefetch",
    "crash_recover",
    "recover",
    "reconcile_dirty",
    "repromote",
    "run_supervisor",
];

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Path of the offending file (workspace-relative when produced by
    /// [`lint_workspace`]).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule identifier.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// Extracts the names of `enum`s declared in protocol source text.
pub fn protocol_enum_names(protocol_source: &str) -> Vec<String> {
    let toks = tokenize(protocol_source);
    let mut names = Vec::new();
    for i in 0..toks.len() {
        if toks[i].is_ident("enum") {
            if let Some(name) = toks.get(i + 1) {
                if name.kind == Kind::Ident {
                    names.push(name.text.clone());
                }
            }
        }
    }
    names
}

/// Whether rule 2 (unwrap/expect) applies to this path.
fn in_request_path(file: &str) -> bool {
    let f = file.replace('\\', "/");
    f.contains("crates/core/src/proxy/")
        || f.contains("crates/server/src/")
        || f.contains("crates/rpc/src/")
}

/// Whether rule 4 (lock order) applies to this path.
fn in_lock_order_scope(file: &str) -> bool {
    file.replace('\\', "/").contains("crates/core/src/")
}

fn rank_of(lock: &str) -> Option<u32> {
    LOCK_ORDER.iter().find(|(n, _)| *n == lock).map(|&(_, r)| r)
}

/// Drops tokens belonging to `#[cfg(test)] mod … { … }` blocks.
fn strip_cfg_test(toks: Vec<Token>) -> Vec<Token> {
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0;
    while i < toks.len() {
        let is_cfg_test = toks[i].is_punct('#')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
            && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 4).is_some_and(|t| t.is_ident("test"))
            && toks.get(i + 5).is_some_and(|t| t.is_punct(')'))
            && toks.get(i + 6).is_some_and(|t| t.is_punct(']'));
        if !is_cfg_test {
            out.push(toks[i].clone());
            i += 1;
            continue;
        }
        let mut j = i + 7;
        // Skip any further attributes on the same item.
        while j < toks.len() && toks[j].is_punct('#') {
            let mut depth = 0;
            j += 1; // consume '#'
            while j < toks.len() {
                if toks[j].is_punct('[') {
                    depth += 1;
                } else if toks[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        if toks.get(j).is_some_and(|t| t.is_ident("mod")) {
            // Skip to the matching close brace of the module body.
            let mut depth = 0;
            while j < toks.len() {
                if toks[j].is_punct('{') {
                    depth += 1;
                } else if toks[j].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
            i = j;
        } else {
            // `#[cfg(test)]` on a non-module item: drop the attribute
            // only; the item itself is still scanned.
            i = j;
        }
    }
    out
}

#[derive(Debug)]
struct Guard {
    name: String,
    lock: String,
    depth: i32,
    line: u32,
    /// Token index of the declaring statement's `;` — the guard is only
    /// live *after* it, so its own initializer is not checked against it.
    born: usize,
}

/// Lints one file's source text. `protocol_enums` comes from
/// [`protocol_enum_names`] on `crates/core/src/protocol.rs`.
pub fn lint_source(file: &str, source: &str, protocol_enums: &[String]) -> Vec<Diagnostic> {
    let toks = strip_cfg_test(tokenize(source));
    let mut diags = Vec::new();
    lint_guards_and_locks(file, &toks, &mut diags);
    lint_protocol_matches(file, &toks, protocol_enums, &mut diags);
    diags
}

/// Rules 1, 2 and 4 share one walk with live-guard tracking.
fn lint_guards_and_locks(file: &str, toks: &[Token], diags: &mut Vec<Diagnostic>) {
    let request_path = in_request_path(file);
    let lock_scope = in_lock_order_scope(file);
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth: i32 = 0;

    for i in 0..toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
            continue;
        }
        if t.is_punct('}') {
            guards.retain(|g| g.depth < depth);
            depth -= 1;
            continue;
        }
        if t.kind != Kind::Ident {
            continue;
        }

        // Acquisition event: `<field> . lock|read|write ( )`.
        let acquires = matches!(t.text.as_str(), "lock" | "read" | "write")
            && i >= 2
            && toks[i - 1].is_punct('.')
            && toks[i - 2].kind == Kind::Ident
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(')'));
        if acquires && lock_scope {
            let field = toks[i - 2].text.clone();
            for g in guards.iter().filter(|g| g.born < i) {
                match (rank_of(&g.lock), rank_of(&field)) {
                    (Some(held), Some(new)) if held < new => {}
                    (Some(_), Some(_)) => diags.push(Diagnostic {
                        file: file.into(),
                        line: t.line,
                        rule: "lock-order",
                        message: format!(
                            "acquiring `{field}` while guard `{}` holds `{}` (declared at line {}) \
                             violates the session → delegation → invalidation lock order",
                            g.name, g.lock, g.line
                        ),
                    }),
                    _ => diags.push(Diagnostic {
                        file: file.into(),
                        line: t.line,
                        rule: "lock-order",
                        message: format!(
                            "nested acquisition of `{field}` under `{}` but one of them is not in \
                             the declared lock-order table",
                            g.lock
                        ),
                    }),
                }
            }
        }

        // Send/callback marker (rule 1): method call on one of the
        // known wire entry points with a guard live.
        if SEND_MARKERS.contains(&t.text.as_str())
            && i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            for g in guards.iter().filter(|g| g.born < i) {
                diags.push(Diagnostic {
                    file: file.into(),
                    line: t.line,
                    rule: "guard-across-send",
                    message: format!(
                        "guard `{}` (lock `{}`, declared at line {}) is live across `.{}()`; \
                         release it (scoped block or drop) before the wire",
                        g.name, g.lock, g.line, t.text
                    ),
                });
            }
        }

        // Rule 2: unwrap/expect in request-path crates.
        if request_path
            && matches!(t.text.as_str(), "unwrap" | "expect")
            && i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            diags.push(Diagnostic {
                file: file.into(),
                line: t.line,
                rule: "unwrap-in-request-path",
                message: format!(
                    "`.{}()` in a proxy/server/RPC request path; propagate the error instead",
                    t.text
                ),
            });
        }

        // Explicit `drop(guard)`.
        if t.is_ident("drop")
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && toks.get(i + 3).is_some_and(|n| n.is_punct(')'))
        {
            if let Some(name) = toks.get(i + 2) {
                if let Some(pos) = guards.iter().rposition(|g| g.name == name.text) {
                    guards.remove(pos);
                }
            }
        }

        // Guard registration: `let [mut] NAME = <recv>.lock();` (or
        // `.read()`/`.write()`).
        if t.is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|n| n.is_ident("mut")) {
                j += 1;
            }
            let Some(name) = toks.get(j) else { continue };
            if name.kind != Kind::Ident || name.text == "_" {
                continue;
            }
            if !toks.get(j + 1).is_some_and(|n| n.is_punct('=')) {
                continue; // pattern or type-annotated binding: not tracked
            }
            let init = j + 2;
            if toks.get(init).is_some_and(|n| n.is_punct('*')) {
                continue; // `let v = *x.lock();` copies out; guard is temporary
            }
            // Find the terminating `;` of the statement.
            let (mut braces, mut parens, mut brackets) = (0i32, 0i32, 0i32);
            let mut end = None;
            for (k, tk) in toks.iter().enumerate().skip(init) {
                if tk.kind == Kind::Punct {
                    match tk.text.as_bytes()[0] {
                        b'{' => braces += 1,
                        b'}' => braces -= 1,
                        b'(' => parens += 1,
                        b')' => parens -= 1,
                        b'[' => brackets += 1,
                        b']' => brackets -= 1,
                        b';' if braces == 0 && parens == 0 && brackets == 0 => {
                            end = Some(k);
                            break;
                        }
                        _ => {}
                    }
                }
            }
            let Some(end) = end else { continue };
            if end >= init + 5
                && toks[end - 1].is_punct(')')
                && toks[end - 2].is_punct('(')
                && matches!(toks[end - 3].text.as_str(), "lock" | "read" | "write")
                && toks[end - 3].kind == Kind::Ident
                && toks[end - 4].is_punct('.')
                && toks[end - 5].kind == Kind::Ident
            {
                // Shadowing at the same depth replaces the old guard.
                guards.retain(|g| !(g.name == name.text && g.depth == depth));
                guards.push(Guard {
                    name: name.text.clone(),
                    lock: toks[end - 5].text.clone(),
                    depth,
                    line: t.line,
                    born: end,
                });
            }
        }
    }
}

/// Rule 3: a `match` whose *patterns* reference a protocol enum must
/// not have a top-level `_` arm.
fn lint_protocol_matches(
    file: &str,
    toks: &[Token],
    protocol_enums: &[String],
    diags: &mut Vec<Diagnostic>,
) {
    if protocol_enums.is_empty() {
        return;
    }
    for i in 0..toks.len() {
        if !toks[i].is_ident("match") || (i > 0 && toks[i - 1].is_punct('.')) {
            continue;
        }
        // Find the body `{` (scrutinees cannot contain bare braces).
        let (mut parens, mut brackets) = (0i32, 0i32);
        let mut body = None;
        for (k, tk) in toks.iter().enumerate().skip(i + 1) {
            if tk.kind == Kind::Punct {
                match tk.text.as_bytes()[0] {
                    b'(' => parens += 1,
                    b')' => parens -= 1,
                    b'[' => brackets += 1,
                    b']' => brackets -= 1,
                    b'{' if parens == 0 && brackets == 0 => {
                        body = Some(k);
                        break;
                    }
                    b';' if parens == 0 && brackets == 0 => break, // not a match expr
                    _ => {}
                }
            }
        }
        let Some(body) = body else { continue };
        let (mut braces, mut parens, mut brackets) = (0i32, 0i32, 0i32);
        let mut in_pattern = true;
        let mut refs_protocol_enum = false;
        let mut wildcard: Option<u32> = None;
        let mut k = body + 1;
        while k < toks.len() {
            let tk = &toks[k];
            let level = braces == 0 && parens == 0 && brackets == 0;
            if tk.kind == Kind::Punct {
                match tk.text.as_bytes()[0] {
                    b'{' => braces += 1,
                    b'}' => {
                        if braces == 0 {
                            break; // end of the match body
                        }
                        braces -= 1;
                        if braces == 0 && parens == 0 && brackets == 0 {
                            in_pattern = true; // block-bodied arm ended
                        }
                    }
                    b'(' => parens += 1,
                    b')' => parens -= 1,
                    b'[' => brackets += 1,
                    b']' => brackets -= 1,
                    b',' if level => in_pattern = true,
                    b'=' if level && toks.get(k + 1).is_some_and(|n| n.is_punct('>')) => {
                        in_pattern = false;
                        k += 1;
                    }
                    _ => {}
                }
            } else if tk.kind == Kind::Ident && in_pattern {
                if tk.text == "_"
                    && level
                    && toks.get(k + 1).is_some_and(|n| n.is_punct('='))
                    && toks.get(k + 2).is_some_and(|n| n.is_punct('>'))
                {
                    wildcard = Some(tk.line);
                } else if protocol_enums.contains(&tk.text)
                    && toks.get(k + 1).is_some_and(|n| n.is_punct(':'))
                    && toks.get(k + 2).is_some_and(|n| n.is_punct(':'))
                {
                    refs_protocol_enum = true;
                }
            }
            k += 1;
        }
        if refs_protocol_enum {
            if let Some(line) = wildcard {
                diags.push(Diagnostic {
                    file: file.into(),
                    line,
                    rule: "protocol-match-exhaustive",
                    message: "`_` arm in a match over a protocol enum; name every variant so new \
                              protocol states fail to compile here"
                        .into(),
                });
            }
        }
    }
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Lints every `crates/*/src/**/*.rs` file under `root` (the workspace
/// root). Vendored stand-ins under `vendor/` are never scanned.
pub fn lint_workspace(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let protocol_path = root.join("crates/core/src/protocol.rs");
    let protocol_src = std::fs::read_to_string(&protocol_path)
        .map_err(|e| format!("cannot read {}: {e}", protocol_path.display()))?;
    let enums = protocol_enum_names(&protocol_src);
    if enums.is_empty() {
        return Err(format!("no protocol enums found in {}", protocol_path.display()));
    }

    let crates_dir = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates_dir) else {
        return Err(format!("cannot read {}", crates_dir.display()));
    };
    let mut crate_dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    crate_dirs.sort();

    let mut files = Vec::new();
    for c in crate_dirs {
        collect_rs(&c.join("src"), &mut files);
    }
    if files.is_empty() {
        return Err(format!("no sources found under {}", crates_dir.display()));
    }

    let mut diags = Vec::new();
    for path in &files {
        let source = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let rel = path.strip_prefix(root).unwrap_or(path).display().to_string();
        diags.extend(lint_source(&rel, &source, &enums));
    }
    Ok(diags)
}
