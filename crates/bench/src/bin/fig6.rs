//! Figure 6: the file-lock benchmark across consistency models.
//!
//! Six clients compete for a hard-link lock. Setups: NFS with a
//! 30-second revalidation period (NFS-inv), GVFS with 30-second
//! invalidation polling (GVFS-inv), NFS with no attribute cache
//! (NFS-noac), GVFS with delegation/callback (GVFS-cb), and the
//! AFS-like whole-file/callback DFS as the traditional strong-
//! consistency reference.
//!
//! Run: `cargo run --release -p gvfs-bench --bin fig6 [--small]`

use gvfs_afs::{AfsClient, AfsServer};
use gvfs_bench::{print_table, rpc_meta, save_json, small_mode, RpcBreakdown};
use gvfs_client::{MountOptions, NfsClient};
use gvfs_core::session::{NativeMount, Session, SessionConfig};
use gvfs_core::ConsistencyModel;
use gvfs_netsim::link::{Link, LinkConfig};
use gvfs_netsim::transport::{ServerNode, SimRpcClient};
use gvfs_netsim::Sim;
use gvfs_rpc::dispatch::Dispatcher;
use gvfs_rpc::stats::RpcStats;
use gvfs_vfs::Vfs;
use gvfs_workloads::lock::{self, LockConfig};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

const CLIENTS: usize = 6;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Setup {
    NfsInv,
    GvfsInv,
    NfsNoac,
    GvfsCb,
    Afs,
}

impl Setup {
    fn name(self) -> &'static str {
        match self {
            Setup::NfsInv => "NFS-inv",
            Setup::GvfsInv => "GVFS-inv",
            Setup::NfsNoac => "NFS-noac",
            Setup::GvfsCb => "GVFS-cb",
            Setup::Afs => "AFS",
        }
    }
}

struct Outcome {
    runtime: Duration,
    rpcs: RpcBreakdown,
    rpc: serde_json::Value,
    /// Proxy read-path counters (absent for setups without a proxy).
    read_path: serde_json::Value,
    fairness: lock::Fairness,
}

fn run_nfs_like(setup: Setup, config: LockConfig) -> Outcome {
    let sim = Sim::new();
    let vfs = Arc::new(Vfs::new());
    lock::populate(&vfs);
    let log = lock::new_log();

    let (transports, root, stats): (Vec<SimRpcClient>, _, RpcStats) = match setup {
        Setup::NfsInv | Setup::NfsNoac => {
            let native = NativeMount::establish(CLIENTS, LinkConfig::wan(), Some(vfs));
            (
                (0..CLIENTS).map(|i| native.client_transport(i)).collect(),
                native.root_fh(),
                native.stats().clone(),
            )
        }
        Setup::GvfsInv | Setup::GvfsCb => {
            let session_config = SessionConfig {
                model: if setup == Setup::GvfsInv {
                    ConsistencyModel::polling_30s()
                } else {
                    ConsistencyModel::delegation()
                },
                ..SessionConfig::default()
            };
            let session = Session::builder(session_config)
                .clients(CLIENTS)
                .wan(LinkConfig::wan())
                .vfs(vfs)
                .establish(&sim);
            let handle = session.handle();
            let done = Arc::new(Mutex::new(0usize));
            // A janitor stops the session's background actors once every
            // competitor finished.
            let d2 = Arc::clone(&done);
            sim.spawn("janitor", move || loop {
                gvfs_netsim::sleep(Duration::from_secs(5));
                if *d2.lock() >= CLIENTS {
                    handle.shutdown();
                    return;
                }
            });
            let transports = (0..CLIENTS).map(|i| session.client_transport(i)).collect();
            let root = session.root_fh();
            let stats = session.wan_stats().clone();
            // Spawn competitors with the completion counter.
            for (i, transport) in (0..CLIENTS).zip::<Vec<SimRpcClient>>(transports) {
                let log = Arc::clone(&log);
                let done = Arc::clone(&done);
                sim.spawn(&format!("client-{i}"), move || {
                    let mount = MountOptions::noac();
                    let client = NfsClient::new(transport, root, mount);
                    lock::run_client(&client, i, &config, &log);
                    *done.lock() += 1;
                });
            }
            let end = sim.run();
            let snap = stats.snapshot();
            return Outcome {
                runtime: end.saturating_since(gvfs_netsim::SimTime::ZERO),
                rpcs: RpcBreakdown::from_snapshot(&snap),
                rpc: rpc_meta(&snap),
                read_path: gvfs_bench::session_read_path(&session, CLIENTS),
                fairness: lock::fairness(&log, CLIENTS),
            };
        }
        Setup::Afs => unreachable!("handled separately"),
    };

    let mount = match setup {
        Setup::NfsInv => MountOptions::with_attr_timeout(Duration::from_secs(30)),
        Setup::NfsNoac => MountOptions::noac(),
        _ => unreachable!(),
    };
    for (i, transport) in transports.into_iter().enumerate() {
        let log = Arc::clone(&log);
        let mount = mount.clone();
        sim.spawn(&format!("client-{i}"), move || {
            let client = NfsClient::new(transport, root, mount);
            lock::run_client(&client, i, &config, &log);
        });
    }
    let end = sim.run();
    let snap = stats.snapshot();
    Outcome {
        runtime: end.saturating_since(gvfs_netsim::SimTime::ZERO),
        rpcs: RpcBreakdown::from_snapshot(&snap),
        rpc: rpc_meta(&snap),
        read_path: serde_json::Value::Null,
        fairness: lock::fairness(&log, CLIENTS),
    }
}

/// The AFS variant of the lock loop (same structure as
/// `lock::run_client`, over the AFS client API).
fn afs_lock_loop(
    client: &Arc<AfsClient>,
    me: usize,
    config: &LockConfig,
    log: &lock::AcquisitionLog,
) {
    client.write_file(&format!("/tmp-{me}"), b"t").expect("create temp");
    let mut wins = 0;
    while wins < config.acquisitions {
        match client.stat("/lockfile") {
            Ok(Some(_)) => {
                gvfs_netsim::sleep(config.retry);
                continue;
            }
            Ok(None) => {}
            Err(e) => panic!("probe failed: {e}"),
        }
        match client.link(&format!("/tmp-{me}"), "/lockfile") {
            Ok(()) => {
                log.lock().push((gvfs_netsim::now().as_secs_f64(), me));
                gvfs_netsim::sleep(config.hold);
                client.remove("/lockfile").expect("unlink lock");
                wins += 1;
                gvfs_netsim::sleep(config.post_release);
            }
            Err(gvfs_afs::AfsError::Exists) => gvfs_netsim::sleep(config.retry),
            Err(e) => panic!("link failed: {e}"),
        }
    }
}

fn run_afs(config: LockConfig) -> Outcome {
    let sim = Sim::new();
    let server = AfsServer::new(Arc::new(Vfs::new()));
    let mut d = Dispatcher::new();
    d.register_arc(Arc::clone(&server) as Arc<dyn gvfs_rpc::dispatch::RpcService>);
    let node = ServerNode::new("afs", d, Duration::from_micros(300));
    let stats = RpcStats::new();
    let log = lock::new_log();
    for i in 0..CLIENTS {
        let link = Link::new(LinkConfig::wan());
        let transport = SimRpcClient::new(link.forward(), Arc::clone(&node), stats.clone());
        let client = AfsClient::new(i as u32 + 1, transport);
        let mut cbd = Dispatcher::new();
        cbd.register(gvfs_afs::AfsCallbackService(Arc::clone(&client)));
        let cb_node = ServerNode::new(&format!("afs-cb-{i}"), cbd, Duration::from_micros(300));
        server.register_callback(
            i as u32 + 1,
            SimRpcClient::new(link.reverse(), cb_node, stats.clone()),
        );
        let log = Arc::clone(&log);
        sim.spawn(&format!("afs-client-{i}"), move || {
            afs_lock_loop(&client, i, &config, &log);
        });
    }
    let end = sim.run();
    let snap = stats.snapshot();
    Outcome {
        runtime: end.saturating_since(gvfs_netsim::SimTime::ZERO),
        rpcs: RpcBreakdown::from_snapshot(&snap),
        rpc: rpc_meta(&snap),
        read_path: serde_json::Value::Null,
        fairness: lock::fairness(&log, CLIENTS),
    }
}

fn main() {
    let config = if small_mode() {
        LockConfig { acquisitions: 2, ..LockConfig::default() }
    } else {
        LockConfig::default()
    };

    let setups = [Setup::NfsInv, Setup::GvfsInv, Setup::NfsNoac, Setup::GvfsCb, Setup::Afs];
    let mut outcomes = Vec::new();
    for setup in setups {
        let outcome = match setup {
            Setup::Afs => run_afs(config),
            _ => run_nfs_like(setup, config),
        };
        eprintln!(
            "  [{}: {:.0}s, {} consistency calls, max-consecutive {}]",
            setup.name(),
            outcome.runtime.as_secs_f64(),
            outcome.rpcs.consistency_calls(),
            outcome.fairness.max_consecutive,
        );
        outcomes.push((setup, outcome));
    }

    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|(s, o)| {
            vec![
                s.name().to_string(),
                o.rpcs.getattr.to_string(),
                o.rpcs.lookup.to_string(),
                o.rpcs.getinv.to_string(),
                o.rpcs.callback.to_string(),
                o.rpcs.consistency_calls().to_string(),
                o.rpcs.total().to_string(),
            ]
        })
        .collect();
    print_table(
        "Figure 6(a): Lock — RPCs over the WAN (AFS uses its own protocol; counts not comparable)",
        &["setup", "GETATTR", "LOOKUP", "GETINV", "CALLBACK", "consistency", "total"],
        &rows,
    );

    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|(s, o)| {
            vec![
                s.name().to_string(),
                format!("{:.0}", o.runtime.as_secs_f64()),
                o.fairness.max_consecutive.to_string(),
                format!("{:?}", o.fairness.per_client),
            ]
        })
        .collect();
    print_table(
        "Figure 6(b): Lock — runtime and fairness",
        &["setup", "runtime(s)", "max-consec", "grants-per-client"],
        &rows,
    );

    // The paper's headline ratios.
    let by_name = |n: &str| outcomes.iter().find(|(s, _)| s.name() == n).expect("setup").1.rpcs;
    let nfs_inv = by_name("NFS-inv").consistency_calls() as f64;
    let gvfs_inv = by_name("GVFS-inv").consistency_calls() as f64;
    let nfs_noac = by_name("NFS-noac").consistency_calls() as f64;
    let gvfs_cb = by_name("GVFS-cb").consistency_calls() as f64;
    println!(
        "\nRelaxed: GVFS-inv uses {:.0}% fewer consistency calls than NFS-inv (paper: 44%)",
        (1.0 - gvfs_inv / nfs_inv) * 100.0
    );
    println!(
        "Strong: NFS-noac / GVFS-cb consistency-call ratio = {:.1}x (paper: >10x)",
        nfs_noac / gvfs_cb
    );

    save_json(
        "fig6.json",
        &serde_json::json!({
            "experiment": "fig6-lock",
            "clients": CLIENTS,
            "acquisitions_per_client": config.acquisitions,
            "outcomes": outcomes.iter().map(|(s, o)| serde_json::json!({
                "setup": s.name(),
                "runtime_s": o.runtime.as_secs_f64(),
                "rpcs": o.rpcs.to_json(),
                "rpc": o.rpc,
                "read_path": o.read_path,
                "fairness": {
                    "max_consecutive": o.fairness.max_consecutive,
                    "per_client": o.fairness.per_client,
                },
            })).collect::<Vec<_>>(),
            "relaxed_savings_pct": (1.0 - gvfs_inv / nfs_inv) * 100.0,
            "strong_ratio": nfs_noac / gvfs_cb,
        }),
    );
}
