/root/repo/target/release/deps/fig5-aac94bf18bd31b85.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-aac94bf18bd31b85: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
