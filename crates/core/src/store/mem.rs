//! The original in-memory block store: per-file extent maps with LRU
//! eviction, extracted verbatim from the pre-refactor `DiskCache`.

use super::{BlockStore, StoreStats};
use crate::cache::FileCache;
use gvfs_nfs3::{Fh3, NfsTime3};
use std::collections::{BTreeMap, HashMap};

/// Volatile extent storage; the default store.
#[derive(Debug, Clone)]
pub struct MemStore {
    files: HashMap<Fh3, FileCache>,
    tags: HashMap<Fh3, NfsTime3>,
    lru: BTreeMap<u64, Fh3>,
    lru_seq: HashMap<Fh3, u64>,
    next_seq: u64,
    capacity: usize,
    used: usize,
    evictions: u64,
}

impl MemStore {
    /// Creates a store bounded to `capacity` bytes of file content.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        MemStore {
            files: HashMap::new(),
            tags: HashMap::new(),
            lru: BTreeMap::new(),
            lru_seq: HashMap::new(),
            next_seq: 0,
            capacity,
            used: 0,
            evictions: 0,
        }
    }

    fn touch(&mut self, fh: Fh3) {
        if let Some(old) = self.lru_seq.remove(&fh) {
            self.lru.remove(&old);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.lru.insert(seq, fh);
        self.lru_seq.insert(fh, seq);
    }

    /// Evicts clean content of least-recently-used files until within
    /// capacity. Dirty data is never evicted.
    fn evict(&mut self) {
        while self.used > self.capacity {
            let Some((&seq, &fh)) = self.lru.iter().next() else { break };
            self.lru.remove(&seq);
            self.lru_seq.remove(&fh);
            let Some(fc) = self.files.get_mut(&fh) else { continue };
            let before = fc.bytes();
            fc.drop_clean();
            let dropped = before - fc.bytes();
            self.used -= dropped;
            if dropped > 0 {
                self.evictions += 1;
            }
            if fc.bytes() == 0 {
                self.files.remove(&fh);
            } else {
                // Still holds dirty data: keep it hot so the loop makes
                // progress on other files.
                self.touch(fh);
                if self.lru.len() <= 1 {
                    break; // only dirty files remain
                }
            }
        }
    }
}

impl BlockStore for MemStore {
    fn read(&mut self, fh: Fh3, offset: u64, len: usize) -> Option<Vec<u8>> {
        let result = self.files.get(&fh)?.read(offset, len);
        if result.is_some() {
            self.touch(fh);
        }
        result
    }

    fn missing_ranges(&self, fh: Fh3, offset: u64, len: usize) -> Vec<(u64, usize)> {
        match self.files.get(&fh) {
            Some(fc) => fc.missing_ranges(offset, len),
            None if len == 0 => Vec::new(),
            None => vec![(offset, len)],
        }
    }

    fn insert_clean(&mut self, fh: Fh3, offset: u64, data: Vec<u8>) {
        let fc = self.files.entry(fh).or_default();
        let before = fc.bytes();
        fc.insert_clean(offset, data);
        self.used += fc.bytes() - before;
        self.touch(fh);
        self.evict();
    }

    fn write_dirty(&mut self, fh: Fh3, offset: u64, data: Vec<u8>) {
        let fc = self.files.entry(fh).or_default();
        let before = fc.bytes();
        fc.write_dirty(offset, data);
        self.used += fc.bytes() - before;
        self.touch(fh);
        self.evict();
    }

    fn clean_range(&mut self, fh: Fh3, offset: u64, len: u64) {
        if let Some(fc) = self.files.get_mut(&fh) {
            fc.clean_range(offset, len);
        }
    }

    fn drop_clean(&mut self, fh: Fh3) {
        if let Some(fc) = self.files.get_mut(&fh) {
            let before = fc.bytes();
            fc.drop_clean();
            self.used -= before - fc.bytes();
            if fc.bytes() == 0 {
                self.files.remove(&fh);
            }
        }
    }

    fn forget(&mut self, fh: Fh3) {
        if let Some(fc) = self.files.remove(&fh) {
            self.used -= fc.bytes();
        }
        if let Some(seq) = self.lru_seq.remove(&fh) {
            self.lru.remove(&seq);
        }
        self.tags.remove(&fh);
    }

    fn dirty_ranges(&self, fh: Fh3) -> Vec<(u64, usize)> {
        self.files.get(&fh).map(FileCache::dirty_ranges).unwrap_or_default()
    }

    fn dirty_blocks(&self, fh: Fh3, block_size: u64) -> Vec<u64> {
        self.files.get(&fh).map(|fc| fc.dirty_blocks(block_size)).unwrap_or_default()
    }

    fn dirty_in_block(&self, fh: Fh3, block_offset: u64, block_size: u64) -> Vec<(u64, Vec<u8>)> {
        self.files
            .get(&fh)
            .map(|fc| fc.dirty_in_block(block_offset, block_size))
            .unwrap_or_default()
    }

    fn has_dirty(&self, fh: Fh3) -> bool {
        self.files.get(&fh).is_some_and(FileCache::has_dirty)
    }

    fn dirty_files(&self) -> Vec<Fh3> {
        let mut v: Vec<Fh3> =
            self.files.iter().filter(|(_, fc)| fc.has_dirty()).map(|(fh, _)| *fh).collect();
        v.sort_unstable();
        v
    }

    fn revalidate(&mut self, fh: Fh3, mtime: NfsTime3) {
        if self.tags.get(&fh).is_some_and(|tag| *tag != mtime) {
            self.drop_clean(fh);
        }
        self.tags.insert(fh, mtime);
    }

    fn retag(&mut self, fh: Fh3, mtime: NfsTime3) {
        self.tags.insert(fh, mtime);
    }

    fn note_size(&mut self, _fh: Fh3, _size: u64) {}

    fn used_bytes(&self) -> usize {
        self.used
    }

    fn stats(&self) -> StoreStats {
        StoreStats { bytes: self.used as u64, evictions: self.evictions, ..StoreStats::default() }
    }

    fn sync(&mut self) {}

    fn crash_reopen(&mut self) {
        let capacity = self.capacity;
        let evictions = self.evictions;
        *self = MemStore::new(capacity);
        self.evictions = evictions;
    }
}
