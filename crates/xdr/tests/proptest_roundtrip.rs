//! Property tests: every XDR value round-trips and produces word-aligned
//! output; decoding arbitrary bytes never panics.

use gvfs_xdr::{from_bytes, to_bytes, Decoder, Encoder};
use proptest::prelude::*;

proptest! {
    #[test]
    fn u32_roundtrip(v in any::<u32>()) {
        prop_assert_eq!(from_bytes::<u32>(&to_bytes(&v).unwrap()).unwrap(), v);
    }

    #[test]
    fn i32_roundtrip(v in any::<i32>()) {
        prop_assert_eq!(from_bytes::<i32>(&to_bytes(&v).unwrap()).unwrap(), v);
    }

    #[test]
    fn u64_roundtrip(v in any::<u64>()) {
        prop_assert_eq!(from_bytes::<u64>(&to_bytes(&v).unwrap()).unwrap(), v);
    }

    #[test]
    fn i64_roundtrip(v in any::<i64>()) {
        prop_assert_eq!(from_bytes::<i64>(&to_bytes(&v).unwrap()).unwrap(), v);
    }

    #[test]
    fn string_roundtrip(s in ".{0,200}") {
        let owned = s.to_string();
        prop_assert_eq!(from_bytes::<String>(&to_bytes(&owned).unwrap()).unwrap(), owned);
    }

    #[test]
    fn opaque_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut enc = Encoder::new();
        enc.put_opaque(&data).unwrap();
        let bytes = enc.into_bytes();
        prop_assert_eq!(bytes.len() % 4, 0);
        let mut dec = Decoder::new(&bytes);
        prop_assert_eq!(dec.get_opaque().unwrap(), data);
        dec.finish().unwrap();
    }

    #[test]
    fn opaque_fixed_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut enc = Encoder::new();
        enc.put_opaque_fixed(&data);
        let bytes = enc.into_bytes();
        prop_assert_eq!(bytes.len() % 4, 0);
        let mut dec = Decoder::new(&bytes);
        prop_assert_eq!(dec.get_opaque_fixed(data.len()).unwrap(), data);
        dec.finish().unwrap();
    }

    #[test]
    fn vec_of_u64_roundtrip(v in proptest::collection::vec(any::<u64>(), 0..64)) {
        prop_assert_eq!(from_bytes::<Vec<u64>>(&to_bytes(&v).unwrap()).unwrap(), v);
    }

    #[test]
    fn option_roundtrip(v in proptest::option::of(any::<u32>())) {
        prop_assert_eq!(from_bytes::<Option<u32>>(&to_bytes(&v).unwrap()).unwrap(), v);
    }

    #[test]
    fn decoding_arbitrary_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Must either succeed or return a structured error — never panic.
        let _ = from_bytes::<Vec<u64>>(&bytes);
        let _ = from_bytes::<String>(&bytes);
        let _ = from_bytes::<Option<u64>>(&bytes);
        let mut dec = Decoder::new(&bytes);
        let _ = dec.get_opaque();
    }

    #[test]
    fn nested_structures_roundtrip(v in proptest::collection::vec(proptest::option::of(".{0,16}".prop_map(String::from)), 0..16)) {
        prop_assert_eq!(from_bytes::<Vec<Option<String>>>(&to_bytes(&v).unwrap()).unwrap(), v);
    }
}
