/root/repo/target/release/deps/gvfs_vfs-f7c67eaba47edd47.d: crates/vfs/src/lib.rs crates/vfs/src/attr.rs crates/vfs/src/error.rs crates/vfs/src/fs.rs

/root/repo/target/release/deps/libgvfs_vfs-f7c67eaba47edd47.rlib: crates/vfs/src/lib.rs crates/vfs/src/attr.rs crates/vfs/src/error.rs crates/vfs/src/fs.rs

/root/repo/target/release/deps/libgvfs_vfs-f7c67eaba47edd47.rmeta: crates/vfs/src/lib.rs crates/vfs/src/attr.rs crates/vfs/src/error.rs crates/vfs/src/fs.rs

crates/vfs/src/lib.rs:
crates/vfs/src/attr.rs:
crates/vfs/src/error.rs:
crates/vfs/src/fs.rs:
